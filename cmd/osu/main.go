// Command osu is an OSU-microbenchmark-style driver for the simulated
// collectives, mirroring the measurement methodology of the paper's
// evaluation (§VI-A): warm-up iterations excluded, per-rank timings over
// many iterations, medians with nonparametric confidence intervals
// (Hoefler–Belli guidelines).
//
// Every algorithm is dispatched through the unified registry: the -op and
// -algo flags join into a registry name (e.g. -op allgather -algo mcast
// runs "mcast-allgather"). The size sweep is a declarative grid executed on
// the sweep engine's worker pool, so sizes measure in parallel; each grid
// point builds its own warm communicator and excludes its warm-up
// iterations.
//
// Usage:
//
//	osu -op allgather -algo mcast -nodes 32 -sizes 4096:1048576 -iters 20
//	osu -op broadcast -algo knomial -nodes 188 -json bench.json
//	osu -op allreduce -algo ring -nodes 64 -compare baseline.json -tol 0.05
//
// Operations and algorithms: allgather (mcast, ring, linear, rd, bruck),
// broadcast (mcast, knomial, binary, chain), reduce-scatter (ring, inc),
// allreduce (ring, mcast — the composed ring Reduce-Scatter + Allgather).
//
// -json writes the structured sweep records; -compare diffs them against a
// previously written baseline and exits 1 if any metric moved more than
// -tol (relative).
package main

import (
	"flag"
	"fmt"
	"os"

	"slices"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/registry"
	"repro/internal/sweep"
)

func main() {
	opFlag := flag.String("op", "allgather", "collective: allgather, broadcast, reduce-scatter or allreduce")
	algo := flag.String("algo", "mcast", "algorithm family (joined with -op into a registry name, e.g. mcast-allgather)")
	nodes := flag.Int("nodes", 32, "participating nodes (<=188)")
	sizesFlag := flag.String("sizes", "4096:1048576", "size range min:max (doubling) or comma list")
	iters := flag.Int("iters", 10, "measured iterations per size")
	warmup := flag.Int("warmup", 2, "warm-up iterations per size (excluded)")
	linkGbps := flag.Float64("link", 56, "link bandwidth in Gbit/s (testbed: 56)")
	jitter := flag.Int("jitter", 0, "per-delivery network noise in microseconds (enables run-to-run variability)")
	seed := flag.Uint64("seed", 1, "base sweep seed (per-point seeds derive from it)")
	jsonPath := flag.String("json", "", "write sweep records as JSON to this path")
	csvPath := flag.String("csv", "", "write sweep records as CSV to this path")
	comparePath := flag.String("compare", "", "baseline BENCH_*.json to diff the records against")
	tol := flag.Float64("tol", 0.05, "relative tolerance for -compare")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	cli.RegisterTrace()
	flag.Parse()
	defer cli.StartCPUProfile()()
	harness.SetShards(cli.Shards())

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		cli.Fatalf(2, "osu: %v", err)
	}
	if *nodes < 1 || *nodes > 188 {
		cli.Fatalf(2, "osu: nodes must be in [1,188]")
	}
	if *iters < 1 || *warmup < 0 {
		cli.Fatalf(2, "osu: iters must be >= 1 and warmup >= 0")
	}
	name := *algo + "-" + *opFlag
	if !slices.Contains(registry.Names(), name) {
		cli.Fatalf(2, "osu: unknown algorithm %q (have %v)", name, registry.Names())
	}

	grid := sweep.Grid{
		Algorithms: []string{name},
		Ops:        []string{*opFlag},
		Nodes:      []int{*nodes},
		MsgBytes:   sizes,
		Seed:       *seed,
	}
	recs, err := sweep.RunGrid(grid, *workers, harness.OSUKernel(harness.OSUConfig{
		Iters: *iters, Warmup: *warmup, LinkGbps: *linkGbps, JitterUS: *jitter,
	}))
	if err != nil {
		cli.Fatalf(1, "osu: %v", err)
	}

	rep := sweep.Report{Name: "osu-" + name, Records: recs}
	if err := sweep.WriteFiles(rep, *jsonPath, *csvPath); err != nil {
		cli.Fatalf(1, "osu: %v", err)
	}
	fmt.Printf("# OSU-style %s / %s, %d nodes, %.0f Gbit/s links, %d iters (+%d warmup)\n",
		*opFlag, name, *nodes, *linkGbps, *iters, *warmup)
	if err := sweep.WriteTable(os.Stdout, recs); err != nil {
		cli.Fatalf(1, "osu: %v", err)
	}

	if cli.TracePath() != "" {
		// Re-run the last (largest) size point with a protocol tracer
		// attached; the traced run is independent of the records above.
		specs := grid.Expand()
		timeline, err := harness.CollTrace(specs[len(specs)-1], *linkGbps)
		if err != nil {
			cli.Fatalf(1, "osu: trace: %v", err)
		}
		cli.WriteTrace(timeline)
	}

	if *comparePath != "" {
		base, err := sweep.LoadFile(*comparePath)
		if err != nil {
			cli.Fatalf(1, "osu: %v", err)
		}
		deltas := sweep.Compare(base, rep, *tol)
		fmt.Printf("# vs %s (tol %.0f%%):\n", *comparePath, *tol*100)
		sweep.WriteDeltas(os.Stdout, deltas)
		if len(deltas) > 0 {
			os.Exit(1)
		}
	}
}

func parseSizes(s string) ([]int, error) {
	if strings.Contains(s, ":") {
		parts := strings.SplitN(s, ":", 2)
		lo, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, err
		}
		hi, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		if lo <= 0 || hi < lo {
			return nil, fmt.Errorf("bad size range %q", s)
		}
		var out []int
		for n := lo; n <= hi; n *= 2 {
			out = append(out, n)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
