// Command osu is an OSU-microbenchmark-style driver for the simulated
// collectives, mirroring the measurement methodology of the paper's
// evaluation (§VI-A): warm-up iterations excluded, per-rank timings over
// many iterations, medians with nonparametric confidence intervals
// (Hoefler–Belli guidelines).
//
// Usage:
//
//	osu -op allgather -algo mcast -nodes 32 -sizes 4096:1048576 -iters 20
//	osu -op broadcast -algo knomial -nodes 188
//
// Operations: allgather (algos: mcast, ring, linear), broadcast (algos:
// mcast, knomial, binary, chain).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/verbs"
)

func main() {
	op := flag.String("op", "allgather", "collective: allgather or broadcast")
	algo := flag.String("algo", "mcast", "algorithm (allgather: mcast|ring|linear; broadcast: mcast|knomial|binary|chain)")
	nodes := flag.Int("nodes", 32, "participating nodes (<=188)")
	sizesFlag := flag.String("sizes", "4096:1048576", "size range min:max (doubling) or comma list")
	iters := flag.Int("iters", 10, "measured iterations per size")
	warmup := flag.Int("warmup", 2, "warm-up iterations per size (excluded)")
	linkGbps := flag.Float64("link", 56, "link bandwidth in Gbit/s (testbed: 56)")
	jitter := flag.Int("jitter", 0, "per-delivery network noise in microseconds (enables run-to-run variability)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "osu:", err)
		os.Exit(2)
	}
	if *nodes < 1 || *nodes > 188 {
		fmt.Fprintln(os.Stderr, "osu: nodes must be in [1,188]")
		os.Exit(2)
	}

	runner, err := buildRunner(*op, *algo, *nodes, *linkGbps*1e9/8, *seed, *jitter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "osu:", err)
		os.Exit(2)
	}

	fmt.Printf("# OSU-style %s / %s, %d nodes, %.0f Gbit/s links, %d iters (+%d warmup)\n",
		*op, *algo, *nodes, *linkGbps, *iters, *warmup)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "size\tmedian µs\tCI95 low\tCI95 high\tmin µs\tmax µs\tGiB/s")
	for _, n := range sizes {
		var lat []float64
		for i := 0; i < *warmup+*iters; i++ {
			d, recvBytes, err := runner(n)
			if err != nil {
				fmt.Fprintf(os.Stderr, "osu: size %d iter %d: %v\n", n, i, err)
				os.Exit(1)
			}
			if i >= *warmup {
				lat = append(lat, d.Micros())
				_ = recvBytes
			}
		}
		s := stats.Summarize(lat)
		_, recvBytes, _ := runnerMeta(*op, *nodes, n)
		bw := float64(recvBytes) / (s.Median / 1e6) / (1 << 30)
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.3f\n",
			n, s.Median, s.CILow, s.CIHigh, s.Min, s.Max, bw)
	}
	w.Flush()
}

// runnerMeta returns the per-rank receive volume for bandwidth reporting.
func runnerMeta(op string, nodes, n int) (int, int, error) {
	if op == "allgather" {
		return n, (nodes - 1) * n, nil
	}
	return n, n, nil
}

// buildRunner constructs a closure running one iteration of the selected
// collective and returning its duration. The communicator/team persists
// across iterations (buffers cached, QPs warm), as OSU benchmarks do.
func buildRunner(op, algo string, nodes int, linkBw float64, seed uint64, jitterUs int) (func(n int) (sim.Time, int, error), error) {
	eng := sim.NewEngine(seed)
	g := topology.Testbed188()
	f := fabric.New(eng, g, fabric.Config{
		LinkBandwidth: linkBw,
		ReorderJitter: sim.Time(jitterUs) * sim.Microsecond,
	})
	hosts := g.Hosts()[:nodes]

	switch op {
	case "allgather":
		switch algo {
		case "mcast":
			comm, err := core.NewCommunicator(f, hosts, core.Config{Transport: verbs.UD})
			if err != nil {
				return nil, err
			}
			return func(n int) (sim.Time, int, error) {
				res, err := comm.RunAllgather(n)
				if err != nil {
					return 0, 0, err
				}
				return res.Duration(), (nodes - 1) * n, nil
			}, nil
		case "ring", "linear":
			team, err := coll.NewTeamOn(f, hosts, coll.Config{})
			if err != nil {
				return nil, err
			}
			return func(n int) (sim.Time, int, error) {
				var res *coll.Result
				var err error
				if algo == "ring" {
					res, err = team.RunRingAllgather(n)
				} else {
					res, err = team.RunLinearAllgather(n)
				}
				if err != nil {
					return 0, 0, err
				}
				return res.Duration(), res.RecvBytes, nil
			}, nil
		}
	case "broadcast":
		switch algo {
		case "mcast":
			comm, err := core.NewCommunicator(f, hosts, core.Config{Transport: verbs.UD})
			if err != nil {
				return nil, err
			}
			return func(n int) (sim.Time, int, error) {
				res, err := comm.RunBroadcast(0, n)
				if err != nil {
					return 0, 0, err
				}
				return res.Duration(), n, nil
			}, nil
		case "knomial", "binary", "chain":
			team, err := coll.NewTeamOn(f, hosts, coll.Config{})
			if err != nil {
				return nil, err
			}
			return func(n int) (sim.Time, int, error) {
				var res *coll.Result
				var err error
				switch algo {
				case "knomial":
					res, err = team.RunKnomialBroadcast(0, n)
				case "binary":
					res, err = team.RunBinaryTreeBroadcast(0, n)
				default:
					res, err = team.RunChainBroadcast(0, n)
				}
				if err != nil {
					return 0, 0, err
				}
				return res.Duration(), n, nil
			}, nil
		}
	}
	return nil, fmt.Errorf("unknown op/algo %s/%s", op, algo)
}

func parseSizes(s string) ([]int, error) {
	if strings.Contains(s, ":") {
		parts := strings.SplitN(s, ":", 2)
		lo, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, err
		}
		hi, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		if lo <= 0 || hi < lo {
			return nil, fmt.Errorf("bad size range %q", s)
		}
		var out []int
		for n := lo; n <= hi; n *= 2 {
			out = append(out, n)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
