// Deprecated: chaosbench is now a thin shim over `repro chaos`. The flag
// surface is unchanged; prefer the repro binary (and its declarative
// manifests under manifests/) for new work.
package main

import (
	"fmt"
	"os"

	"repro/internal/command"
)

func main() {
	fmt.Fprintln(os.Stderr, "# chaosbench is deprecated; use: repro chaos (or repro run <manifest>)")
	os.Exit(command.Run(append([]string{"chaos"}, os.Args[1:]...), os.Stdout, os.Stderr))
}
