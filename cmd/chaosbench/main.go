// Command chaosbench measures collectives on a noisy fabric: it expands an
// algorithm × scenario grid on the sweep engine's worker pool, runs every
// point on the 188-node testbed model with the named perturbation scenario
// armed (internal/scenario: link flaps, degradations, drop hotspots,
// stragglers, incast bursts, multi-tenant background flows), and reports
// each point's slowdown relative to the quiet fabric plus the recovery work
// the scenario forced (fabric drops, slow-path repairs, retransmissions,
// background-traffic volume).
//
// Usage:
//
//	chaosbench [-algos mcast-allgather,ring-allgather] [-scenarios all]
//	           [-nodes 32] [-msg 65536] [-seed 7] [-workers 0]
//	           [-json chaos.json] [-csv chaos.csv]
//
// -scenarios takes a comma list of preset names or "all"; "quiet" is kept
// in the list automatically so slowdown_vs_quiet always has its anchor.
// Like every binary in this repository the output is deterministic: the
// same flags produce byte-identical -json files at any -workers count.
//
// Invalid parameters exit with status 2; simulation failures with 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"

	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func main() {
	algosFlag := flag.String("algos", "mcast-allgather,ring-allgather",
		"comma list of registry algorithms to perturb")
	scenariosFlag := flag.String("scenarios", "all",
		"comma list of scenario presets, or \"all\"")
	nodes := flag.Int("nodes", 32, "participating nodes (2..188)")
	msg := flag.Int("msg", 64<<10, "message size in bytes (> 0)")
	seed := flag.Uint64("seed", 7, "base sweep seed (per-point seeds derive from it)")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write sweep records as JSON to this path")
	csvPath := flag.String("csv", "", "write sweep records as CSV to this path")
	flag.Parse()
	defer cli.StartCPUProfile()()
	harness.SetShards(cli.Shards())

	if *nodes < 2 || *nodes > 188 {
		cli.Fatalf(2, "chaosbench: nodes must be in [2,188], got %d", *nodes)
	}
	if *msg <= 0 {
		cli.Fatalf(2, "chaosbench: msg must be positive, got %d", *msg)
	}
	algos := cli.SplitList(*algosFlag)
	if len(algos) == 0 {
		cli.Fatalf(2, "chaosbench: no algorithms given")
	}
	for _, a := range algos {
		if !slices.Contains(registry.Names(), a) {
			cli.Fatalf(2, "chaosbench: unknown algorithm %q (have %v)", a, registry.Names())
		}
	}
	var scenarios []string
	if *scenariosFlag == "all" {
		scenarios = scenario.Names()
	} else {
		scenarios = cli.SplitList(*scenariosFlag)
		for _, s := range scenarios {
			if _, err := scenario.New(s); err != nil {
				cli.Fatalf(2, "chaosbench: %v", err)
			}
		}
	}
	if len(scenarios) == 0 {
		cli.Fatalf(2, "chaosbench: no scenarios given")
	}
	if !slices.Contains(scenarios, scenario.Quiet) {
		// slowdown_vs_quiet needs its anchor point.
		scenarios = append([]string{scenario.Quiet}, scenarios...)
	}

	grid := harness.ResilienceGrid(algos, scenarios, *nodes, *msg, *seed)
	fmt.Printf("== chaosbench: %d algorithms x %d scenarios, %d nodes, %d B messages ==\n",
		len(algos), len(scenarios), *nodes, *msg)
	recs, err := harness.ResilienceRecords(grid, *workers)
	if err != nil {
		cli.Fatalf(1, "chaosbench: %v", err)
	}
	if err := sweep.WriteTable(os.Stdout, recs); err != nil {
		cli.Fatalf(1, "chaosbench: %v", err)
	}
	fmt.Println("slowdown_vs_quiet is each point's duration over its quiet sibling's.")
	if err := sweep.WriteFiles(sweep.Report{Name: "chaosbench", Records: recs}, *jsonPath, *csvPath); err != nil {
		cli.Fatalf(1, "chaosbench: %v", err)
	}
}
