// Command trafficbench regenerates Figure 12: traffic totals across all
// switch ports of the 188-node fat-tree while running Broadcast and
// Allgather with multicast and point-to-point algorithms (64 KiB messages,
// several iterations, matching the paper's counter methodology).
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/harness"
)

func main() {
	nodes := flag.Int("nodes", 188, "participating nodes")
	msg := flag.Int("msg", 64<<10, "message size in bytes")
	iters := flag.Int("iters", 10, "measured iterations")
	flag.Parse()

	fmt.Printf("== Figure 12: switch-port traffic, %d nodes, %d B messages, %d iterations ==\n",
		*nodes, *msg, *iters)
	rows, err := harness.Fig12Traffic(*nodes, *msg, *iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trafficbench:", err)
		os.Exit(1)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "operation\talgorithm\tswitch-port bytes\tsavings vs P2P")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.2fx\n", r.Op, r.Algo, r.SwitchBytes, r.Savings)
	}
	w.Flush()
	fmt.Println("paper: multicast reduces data movement 1.5x (broadcast) to 2x (allgather).")
}
