// Command trafficbench regenerates Figure 12: traffic totals across all
// switch ports of the 188-node fat-tree while running Broadcast and
// Allgather with multicast and point-to-point algorithms (64 KiB messages,
// several iterations, matching the paper's counter methodology). The four
// algorithm cells form a grid executed on the sweep engine's worker pool;
// the savings_vs_p2p column is P2P switch bytes / multicast switch bytes
// for the same operation.
//
// Usage:
//
//	trafficbench [-nodes 188] [-msg 65536] [-iters 10] [-workers 0] [-json fig12.json]
//
// Invalid parameters exit with status 2; simulation failures with 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/sweep"
)

func main() {
	nodes := flag.Int("nodes", 188, "participating nodes (2..188)")
	msg := flag.Int("msg", 64<<10, "message size in bytes (> 0)")
	iters := flag.Int("iters", 10, "measured iterations (> 0)")
	jsonPath := flag.String("json", "", "write sweep records as JSON to this path")
	csvPath := flag.String("csv", "", "write sweep records as CSV to this path")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()
	defer cli.StartCPUProfile()()
	harness.SetShards(cli.Shards())

	if *nodes < 2 || *nodes > 188 {
		cli.Fatalf(2, "trafficbench: nodes must be in [2,188], got %d", *nodes)
	}
	if *msg <= 0 {
		cli.Fatalf(2, "trafficbench: msg must be positive, got %d", *msg)
	}
	if *iters <= 0 {
		cli.Fatalf(2, "trafficbench: iters must be positive, got %d", *iters)
	}

	fmt.Printf("== Figure 12: switch-port traffic, %d nodes, %d B messages, %d iterations ==\n",
		*nodes, *msg, *iters)
	recs, err := harness.Fig12Records(*nodes, *msg, *iters, *workers)
	if err != nil {
		cli.Fatalf(1, "trafficbench: %v", err)
	}
	if err := sweep.WriteTable(os.Stdout, recs); err != nil {
		cli.Fatalf(1, "trafficbench: %v", err)
	}
	fmt.Println("paper: multicast reduces data movement 1.5x (broadcast) to 2x (allgather).")
	if err := sweep.WriteFiles(sweep.Report{Name: "trafficbench-fig12", Records: recs}, *jsonPath, *csvPath); err != nil {
		cli.Fatalf(1, "trafficbench: %v", err)
	}
}
