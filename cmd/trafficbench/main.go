// Deprecated: trafficbench is now a thin shim over `repro traffic`. The flag
// surface is unchanged; prefer the repro binary (and its declarative
// manifests under manifests/) for new work.
package main

import (
	"fmt"
	"os"

	"repro/internal/command"
)

func main() {
	fmt.Fprintln(os.Stderr, "# trafficbench is deprecated; use: repro traffic (or repro run <manifest>)")
	os.Exit(command.Run(append([]string{"traffic"}, os.Args[1:]...), os.Stdout, os.Stderr))
}
