// repro is the single entry point for every experiment in this
// repository: manifest-driven runs (`repro run manifests/pr.json`),
// manifest linting (`repro validate`), and flag-compatible shims for the
// seven historical benchmark binaries (`repro osu`, `repro chaos`, ...).
// Run `repro help` for the full subcommand list.
package main

import (
	"os"

	"repro/internal/command"
)

func main() {
	os.Exit(command.Run(os.Args[1:], os.Stdout, os.Stderr))
}
