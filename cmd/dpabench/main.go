// Command dpabench regenerates the SmartNIC-offloading experiments of the
// paper's evaluation: Figure 5 (single CPU core vs single DPA core),
// Table I (single-thread datapath metrics), Figures 13/14 (DPA thread
// scaling), Figure 15 (UC multi-packet chunks) and Figure 16 (scaling to
// 1.6 Tbit/s links).
//
// Usage:
//
//	dpabench -fig 5|13|14|15|16
//	dpabench -table 1
//	dpabench -all
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/harness"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (5, 13, 14, 15, 16)")
	table := flag.Int("table", 0, "table to regenerate (1)")
	all := flag.Bool("all", false, "run every DPA experiment")
	flag.Parse()

	if !*all && *fig == 0 && *table == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *all || *fig == 5 {
		fig5()
	}
	if *all || *table == 1 {
		table1()
	}
	if *all || *fig == 13 {
		fig13()
	}
	if *all || *fig == 14 {
		fig14()
	}
	if *all || *fig == 15 {
		fig15()
	}
	if *all || *fig == 16 {
		fig16()
	}
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func fig5() {
	fmt.Println("\n== Figure 5: single-threaded CPU vs single-core DPA UD datapath (200 Gbit/s link) ==")
	sizes := []int{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 8 << 20}
	w := newTab()
	fmt.Fprintln(w, "message\tCPU 1-thread Gbit/s\tDPA 1-core Gbit/s\tlink Gbit/s")
	for _, p := range harness.Fig5SingleCore(sizes) {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.0f\n", size(p.MsgBytes), p.CPUGbps, p.DPAGbps, p.LinkGbps)
	}
	w.Flush()
	fmt.Println("paper: one CPU core sustains ~1/2-2/3 of 200 Gbit/s; one DPA core reaches peak.")
}

func table1() {
	fmt.Println("\n== Table I: single DPA thread, 8 MiB buffer, 4 KiB chunks ==")
	w := newTab()
	fmt.Fprintln(w, "datapath\tthroughput GiB/s\tinstructions/CQE\tcycles/CQE\tIPC")
	for _, r := range harness.Table1SingleThread() {
		fmt.Fprintf(w, "%s\t%.1f\t%d\t%d\t%.2f\n",
			r.Datapath, r.ThroughputGiBps, r.InstructionsCQE, r.CyclesCQE, r.IPC)
	}
	w.Flush()
	fmt.Println("paper: UC 11.9 GiB/s, 66 instr, 598 cycles, IPC 0.11; UD 5.2 GiB/s, 113 instr, 1084 cycles, IPC 0.10.")
}

func fig13() {
	fmt.Println("\n== Figure 13: DPA thread scaling, 8 MiB receive buffer, 4 KiB chunks ==")
	pts, base := harness.Fig13ThreadScaling([]int{1, 2, 4, 8, 16})
	w := newTab()
	fmt.Fprintln(w, "datapath\tthreads\tGiB/s\tlink share")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\n", p.Transport, p.Threads, p.GiBps, p.LinkShare)
	}
	fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\n", base.Transport, base.Threads, base.GiBps, base.LinkShare)
	w.Flush()
	fmt.Println("paper: UC reaches full throughput with 4 threads; UD needs 8-16.")
}

func fig14() {
	fmt.Println("\n== Figure 14: fraction of 200 Gbit/s peak vs DPA threads (4 KiB chunks) ==")
	pts, _ := harness.Fig13ThreadScaling([]int{1, 2, 4, 8, 16})
	w := newTab()
	fmt.Fprintln(w, "datapath\tthreads\t% of peak")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%d\t%.0f%%\n", p.Transport, p.Threads, p.LinkShare*100)
	}
	w.Flush()
	fmt.Println("paper: with 1/256 of DPA capacity, UC reaches 1/2 and UD 1/5 of peak.")
}

func fig15() {
	fmt.Println("\n== Figure 15: UC throughput vs multi-packet chunk size (8 MiB buffer) ==")
	pts := harness.Fig15ChunkSize(
		[]int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10},
		[]int{1, 2, 4},
	)
	w := newTab()
	fmt.Fprintln(w, "chunk\tthreads\tGiB/s\tlink share")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\n", size(p.ChunkBytes), p.Threads, p.GiBps, p.LinkShare)
	}
	w.Flush()
	fmt.Println("paper: with larger chunks DPA sustains line rate with fewer threads.")
}

func fig16() {
	fmt.Println("\n== Figure 16: sustained 64 B chunk processing rate vs DPA threads ==")
	pts := harness.Fig16TbitScaling([]int{1, 2, 4, 8, 16, 32, 64, 128})
	w := newTab()
	fmt.Fprintln(w, "datapath\tthreads\tMchunks/s\tx 1.6 Tbit/s target")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.2f\n", p.Transport, p.Threads, p.ChunkRate/1e6, p.LinkShare)
	}
	w.Flush()
	fmt.Printf("target: %.1f Mchunks/s (1.6 Tbit/s at 4 KiB MTU). paper: 128 threads sustain it.\n",
		harness.Tbit16Target/1e6)
}

func size(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
