// Command dpabench regenerates the SmartNIC-offloading experiments of the
// paper's evaluation: Figure 5 (single CPU core vs single DPA core),
// Table I (single-thread datapath metrics), Figures 13/14 (DPA thread
// scaling — one sweep; Figure 14 is its link-share column), Figure 15 (UC
// multi-packet chunks) and Figure 16 (scaling to 1.6 Tbit/s links). Every
// experiment is a declarative grid executed on the sweep engine's worker
// pool.
//
// Usage:
//
//	dpabench -fig 5|13|14|15|16
//	dpabench -table 1
//	dpabench -all -json dpabench.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/sweep"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (5, 13, 14, 15, 16)")
	table := flag.Int("table", 0, "table to regenerate (1)")
	all := flag.Bool("all", false, "run every DPA experiment")
	jsonPath := flag.String("json", "", "write all produced sweep records as JSON to this path")
	csvPath := flag.String("csv", "", "write all produced sweep records as CSV to this path")
	flag.Parse()
	defer cli.StartCPUProfile()()
	harness.SetShards(cli.Shards())

	if !*all && *fig == 0 && *table == 0 {
		flag.Usage()
		os.Exit(2)
	}
	switch *fig {
	case 0, 5, 13, 14, 15, 16:
	default:
		cli.Fatalf(2, "dpabench: unknown figure %d (have 5, 13, 14, 15, 16)", *fig)
	}
	if *table != 0 && *table != 1 {
		cli.Fatalf(2, "dpabench: unknown table %d (have 1)", *table)
	}

	type experiment struct {
		enabled bool
		header  string
		note    string
		run     func() ([]sweep.Record, error)
	}
	experiments := []experiment{
		{*all || *fig == 5,
			"== Figure 5: single-threaded CPU vs single-core DPA UD datapath (200 Gbit/s link) ==",
			"paper: one CPU core sustains ~1/2-2/3 of 200 Gbit/s; one DPA core reaches peak.",
			func() ([]sweep.Record, error) {
				return harness.Fig5Records([]int{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 8 << 20})
			}},
		{*all || *table == 1,
			"== Table I: single DPA thread, 8 MiB buffer, 4 KiB chunks ==",
			"paper: UC 11.9 GiB/s, 66 instr, 598 cycles, IPC 0.11; UD 5.2 GiB/s, 113 instr, 1084 cycles, IPC 0.10.",
			harness.Table1Records},
		{*all || *fig == 13 || *fig == 14,
			"== Figures 13/14: DPA thread scaling, 8 MiB receive buffer, 4 KiB chunks (last row: CPU baseline) ==",
			"paper: UC reaches full throughput with 4 threads; UD needs 8-16 (1/256 of DPA capacity: UC 1/2, UD 1/5 of peak).",
			func() ([]sweep.Record, error) { return harness.Fig13Records([]int{1, 2, 4, 8, 16}) }},
		{*all || *fig == 15,
			"== Figure 15: UC throughput vs multi-packet chunk size (8 MiB buffer) ==",
			"paper: with larger chunks DPA sustains line rate with fewer threads.",
			func() ([]sweep.Record, error) {
				return harness.Fig15Records(
					[]int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10},
					[]int{1, 2, 4})
			}},
		{*all || *fig == 16,
			"== Figure 16: sustained 64 B chunk processing rate vs DPA threads (link_share: x 1.6 Tbit/s target) ==",
			fmt.Sprintf("target: %.1f Mchunks/s (1.6 Tbit/s at 4 KiB MTU). paper: 128 threads sustain it.",
				harness.Tbit16Target/1e6),
			func() ([]sweep.Record, error) { return harness.Fig16Records([]int{1, 2, 4, 8, 16, 32, 64, 128}) }},
	}

	var produced []sweep.Record
	for _, e := range experiments {
		if !e.enabled {
			continue
		}
		recs, err := e.run()
		if err != nil {
			cli.Fatalf(1, "dpabench: %v", err)
		}
		fmt.Println("\n" + e.header)
		if err := sweep.WriteTable(os.Stdout, recs); err != nil {
			cli.Fatalf(1, "dpabench: %v", err)
		}
		fmt.Println(e.note)
		produced = append(produced, recs...)
	}
	if err := sweep.WriteFiles(sweep.Report{Name: "dpabench", Records: produced}, *jsonPath, *csvPath); err != nil {
		cli.Fatalf(1, "dpabench: %v", err)
	}
}
