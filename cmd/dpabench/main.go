// Deprecated: dpabench is now a thin shim over `repro dpa`. The flag
// surface is unchanged; prefer the repro binary (and its declarative
// manifests under manifests/) for new work.
package main

import (
	"fmt"
	"os"

	"repro/internal/command"
)

func main() {
	fmt.Fprintln(os.Stderr, "# dpabench is deprecated; use: repro dpa (or repro run <manifest>)")
	os.Exit(command.Run(append([]string{"dpa"}, os.Args[1:]...), os.Stdout, os.Stderr))
}
