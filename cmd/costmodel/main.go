// Command costmodel regenerates the paper's analytic artifacts: Figure 2
// (theoretical traffic savings on a 1024-node radix-32 fat-tree), Figure 7
// (bitmap and receive-buffer sizing vs PSN bits) and the Appendix B
// speedup of {multicast Allgather + INC Reduce-Scatter}, both from the
// closed-form model and measured on the simulator.
//
// Usage:
//
//	costmodel -fig 2|7
//	costmodel -speedup
//	costmodel -all
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/harness"
	"repro/internal/model"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (2 or 7)")
	speedup := flag.Bool("speedup", false, "Appendix B concurrent {AG,RS} study")
	economics := flag.Bool("economics", false, "§VII SmartNIC offloading economics")
	all := flag.Bool("all", false, "run everything")
	flag.Parse()
	if !*all && *fig == 0 && !*speedup && !*economics {
		flag.Usage()
		os.Exit(2)
	}
	if *all || *fig == 2 {
		fig2()
	}
	if *all || *fig == 7 {
		fig7()
	}
	if *all || *speedup {
		appB()
	}
	if *all || *economics {
		econ()
	}
}

func econ() {
	fmt.Println("\n== \u00a7VII: economics of SmartNIC offloading (SuperPOD node) ==")
	in := model.SuperPODNode()
	r := in.Economics()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "links\t%d x %.0f Gbit/s\n", in.Links, in.LinkGbps)
	fmt.Fprintf(w, "CPU cores to drive links (both directions)\t%.0f\n", r.CoresNeeded)
	fmt.Fprintf(w, "host CPUs (%d sockets)\t$%.0f\t%.0f W\n", in.Sockets, r.CPUCost, r.CPUWatts)
	fmt.Fprintf(w, "DPA SmartNICs (%d)\t$%.0f\t%.0f W\n", in.Links, r.NICCost, r.NICWatts)
	fmt.Fprintf(w, "NIC advantage\t%.1fx cheaper\t%.1fx less power\n", r.CostAdvantage, r.PowerAdvantage)
	w.Flush()
	fmt.Println("paper: NICs ~2.5x lower cost and ~7x lower energy than the CPUs.")
}

func fig2() {
	fmt.Println("\n== Figure 2: theoretical Allgather traffic, 1024 nodes, radix-32 fat-tree ==")
	g, err := model.Fig2Cluster()
	if err != nil {
		fmt.Fprintln(os.Stderr, "costmodel:", err)
		os.Exit(1)
	}
	m, err := model.NewTrafficModel(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "costmodel:", err)
		os.Exit(1)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "send buffer\tring AG bytes\tlinear AG bytes\tmcast AG bytes\tsavings (ring/mcast)")
	for _, n := range []int{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		fmt.Fprintf(w, "%s\t%.3g\t%.3g\t%.3g\t%.2fx\n",
			size(n), m.RingAllgatherBytes(n), m.LinearAllgatherBytes(n),
			m.McastAllgatherBytes(n), m.Savings(n))
	}
	w.Flush()
	fmt.Println("paper: multicast-based Allgather halves total network traffic at scale.")
}

func fig7() {
	fmt.Println("\n== Figure 7: bitmap and receive-buffer sizes vs PSN bits (4 KiB chunks) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "PSN bits\tmax recv buffer\tbitmap\tfits DPA LLC (1.5 MB)")
	for _, p := range model.BitmapModel(16, 28, 4096) {
		fmt.Fprintf(w, "%d\t%s\t%s\t%v\n",
			p.PSNBits, human(p.MaxRecvBuffer), human(p.BitmapBytes), p.FitsDPALLC)
	}
	w.Flush()
	fmt.Printf("LLC-limited receive buffer: %s (paper: ~50 GB).\n", human(model.MaxBufferFittingLLC(4096)))
	fmt.Printf("communicators fitting the LLC (64 KiB bitmap + 16 KiB ctx): %d (paper: >16).\n",
		model.CommunicatorsFittingLLC(64<<10, 16<<10))
}

func appB() {
	fmt.Println("\n== Appendix B: concurrent {Allgather, Reduce-Scatter} speedup ==")
	pts, err := harness.AppBConcurrent([]int{2, 4, 8, 16}, 1<<20)
	if err != nil {
		fmt.Fprintln(os.Stderr, "costmodel:", err)
		os.Exit(1)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "P\t{AGring,RSring}\t{AGmcast,RSinc}\tmeasured speedup\tmodel 2-2/P")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%v\t%v\t%.2fx\t%.2fx\n", p.P, p.RingPair, p.IncPair, p.Speedup, p.Model)
	}
	w.Flush()
	fmt.Println("paper: concurrent collectives speed up by up to 2x at scale.")
}

func size(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func human(b float64) string {
	switch {
	case b >= 1<<40:
		return fmt.Sprintf("%.1f TiB", b/(1<<40))
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}
