// Command costmodel regenerates the paper's analytic artifacts: Figure 2
// (theoretical traffic savings on a 1024-node radix-32 fat-tree), Figure 7
// (bitmap and receive-buffer sizing vs PSN bits) and the Appendix B
// speedup of {multicast Allgather + INC Reduce-Scatter}, both from the
// closed-form model and measured on the simulator. Every artifact is
// produced as sweep records — the closed-form figures through pure-model
// kernels, Appendix B on the sweep engine's worker pool.
//
// Usage:
//
//	costmodel -fig 2|7
//	costmodel -speedup
//	costmodel -all -json costmodel.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/sweep"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (2 or 7)")
	speedup := flag.Bool("speedup", false, "Appendix B concurrent {AG,RS} study")
	economics := flag.Bool("economics", false, "§VII SmartNIC offloading economics")
	all := flag.Bool("all", false, "run everything")
	jsonPath := flag.String("json", "", "write all produced sweep records as JSON to this path")
	csvPath := flag.String("csv", "", "write all produced sweep records as CSV to this path")
	flag.Parse()
	defer cli.StartCPUProfile()()
	harness.SetShards(cli.Shards())
	if !*all && *fig == 0 && !*speedup && !*economics {
		flag.Usage()
		os.Exit(2)
	}
	if *fig != 0 && *fig != 2 && *fig != 7 {
		cli.Fatalf(2, "costmodel: unknown figure %d (have 2 and 7)", *fig)
	}

	var produced []sweep.Record
	emit := func(header string, note string, recs []sweep.Record) {
		fmt.Println("\n" + header)
		if err := sweep.WriteTable(os.Stdout, recs); err != nil {
			cli.Fatalf(1, "costmodel: %v", err)
		}
		fmt.Println(note)
		produced = append(produced, recs...)
	}

	if *all || *fig == 2 {
		recs, err := fig2Records()
		if err != nil {
			cli.Fatalf(1, "costmodel: %v", err)
		}
		emit("== Figure 2: theoretical Allgather traffic, 1024 nodes, radix-32 fat-tree ==",
			"paper: multicast-based Allgather halves total network traffic at scale.", recs)
	}
	if *all || *fig == 7 {
		emit("== Figure 7: bitmap and receive-buffer sizes vs PSN bits (4 KiB chunks) ==",
			fmt.Sprintf("LLC-limited receive buffer: %.1f GB (paper: ~50 GB); communicators fitting the LLC: %d (paper: >16).",
				model.MaxBufferFittingLLC(4096)/1e9,
				model.CommunicatorsFittingLLC(64<<10, 16<<10)),
			fig7Records())
	}
	if *all || *speedup {
		recs, err := harness.AppBRecords([]int{2, 4, 8, 16}, 1<<20)
		if err != nil {
			cli.Fatalf(1, "costmodel: %v", err)
		}
		emit("== Appendix B: concurrent {Allgather, Reduce-Scatter} span (model_speedup: 2 - 2/P) ==",
			"paper: concurrent collectives speed up by up to 2x at scale (ring-pair span / inc-pair span).", recs)
	}
	if *all || *economics {
		emit("== §VII: economics of SmartNIC offloading (SuperPOD node) ==",
			"paper: NICs ~2.5x lower cost and ~7x lower energy than the CPUs.", econRecords())
	}
	if err := sweep.WriteFiles(sweep.Report{Name: "costmodel", Records: produced}, *jsonPath, *csvPath); err != nil {
		cli.Fatalf(1, "costmodel: %v", err)
	}
}

// fig2Records evaluates the closed-form traffic model over a send-buffer
// grid — an analytic sweep, no simulation engine involved.
func fig2Records() ([]sweep.Record, error) {
	g, err := model.Fig2Cluster()
	if err != nil {
		return nil, err
	}
	m, err := model.NewTrafficModel(g)
	if err != nil {
		return nil, err
	}
	grid := sweep.Grid{MsgBytes: []int{64 << 10, 256 << 10, 1 << 20, 4 << 20}}
	return sweep.RunGrid(grid, 0, func(s sweep.Spec) (sweep.Record, error) {
		return sweep.Record{Spec: s, Metrics: map[string]float64{
			"ring_ag_bytes":   m.RingAllgatherBytes(s.MsgBytes),
			"linear_ag_bytes": m.LinearAllgatherBytes(s.MsgBytes),
			"mcast_ag_bytes":  m.McastAllgatherBytes(s.MsgBytes),
			"savings":         m.Savings(s.MsgBytes),
		}}, nil
	})
}

// fig7Records renders the PSN-bits sizing model; psn_bits is the swept
// quantity, carried as a metric column.
func fig7Records() []sweep.Record {
	var recs []sweep.Record
	for i, p := range model.BitmapModel(16, 28, 4096) {
		fits := 0.0
		if p.FitsDPALLC {
			fits = 1
		}
		recs = append(recs, sweep.Record{
			Spec: sweep.Spec{ChunkSize: 4096, Index: i},
			Metrics: map[string]float64{
				"psn_bits":        float64(p.PSNBits),
				"max_recv_buffer": p.MaxRecvBuffer,
				"bitmap_bytes":    p.BitmapBytes,
				"fits_dpa_llc":    fits,
			},
		})
	}
	return recs
}

// econRecords reports the §VII cost/power comparison as one record.
func econRecords() []sweep.Record {
	in := model.SuperPODNode()
	r := in.Economics()
	return []sweep.Record{{
		Spec: sweep.Spec{Algorithm: "superpod-node"},
		Metrics: map[string]float64{
			"links":           float64(in.Links),
			"link_gbps":       in.LinkGbps,
			"cores_needed":    r.CoresNeeded,
			"cpu_cost_usd":    r.CPUCost,
			"cpu_watts":       r.CPUWatts,
			"nic_cost_usd":    r.NICCost,
			"nic_watts":       r.NICWatts,
			"cost_advantage":  r.CostAdvantage,
			"power_advantage": r.PowerAdvantage,
		},
	}}
}
