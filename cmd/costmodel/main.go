// Deprecated: costmodel is now a thin shim over `repro cost`. The flag
// surface is unchanged; prefer the repro binary (and its declarative
// manifests under manifests/) for new work.
package main

import (
	"fmt"
	"os"

	"repro/internal/command"
)

func main() {
	fmt.Fprintln(os.Stderr, "# costmodel is deprecated; use: repro cost (or repro run <manifest>)")
	os.Exit(command.Run(append([]string{"cost"}, os.Args[1:]...), os.Stdout, os.Stderr))
}
