package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/verbs"
)

// TestGoldenDurationsAcrossShards runs the two registry goldens through
// the facade at every shard count in the acceptance matrix. The collective
// stack is built on the sharded group's primary engine, so the pinned
// durations must not move by a nanosecond.
func TestGoldenDurationsAcrossShards(t *testing.T) {
	const (
		goldenMcast = 722976 // ns (registry_test.go)
		goldenRing  = 678008 // ns
	)
	run := func(shards int, algo string, opts AlgorithmOptions) int64 {
		t.Helper()
		sys, err := NewSystem(SystemConfig{Hosts: 16, HostsPerLeaf: 4, Seed: 3, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		alg, err := NewAlgorithm(sys, algo, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := alg.Run(Op{Kind: Allgather, Bytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Duration())
	}
	for _, shards := range []int{1, 2, 8} {
		if got := run(shards, "mcast-allgather", AlgorithmOptions{
			Core: core.Config{Transport: verbs.UD, Subgroups: 4},
		}); got != goldenMcast {
			t.Errorf("shards=%d: mcast-allgather = %d ns, want %d", shards, got, goldenMcast)
		}
		if got := run(shards, "ring-allgather", AlgorithmOptions{}); got != goldenRing {
			t.Errorf("shards=%d: ring-allgather = %d ns, want %d", shards, got, goldenRing)
		}
	}
}
