package repro

import (
	"testing"

	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/verbs"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Hosts()); got != 16 {
		t.Fatalf("default hosts = %d, want 16", got)
	}
	if sys.Engine == nil || sys.Fabric == nil || sys.Cluster == nil {
		t.Fatal("system missing components")
	}
}

func TestNewSystemTopologies(t *testing.T) {
	for _, topo := range []string{"fattree2", "fattree3", "star"} {
		sys, err := NewSystem(SystemConfig{Hosts: 8, Topology: topo})
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if len(sys.Hosts()) != 8 {
			t.Fatalf("%s: hosts = %d", topo, len(sys.Hosts()))
		}
	}
	sys, err := NewSystem(SystemConfig{Topology: "testbed188"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Hosts()) != 188 {
		t.Fatalf("testbed hosts = %d", len(sys.Hosts()))
	}
	if _, err := NewSystem(SystemConfig{Topology: "torus"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestSystemEndToEndCollectives(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Hosts: 8, HostsPerLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := sys.NewCommunicator(sys.Hosts(), core.Config{
		Transport: verbs.UD, VerifyData: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comm.RunAllgather(100000); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
	team, err := sys.NewTeam(sys.Hosts(), coll.Config{VerifyData: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := team.RunRingAllgather(50000); err != nil {
		t.Fatal(err)
	}
	if err := team.VerifyAllgather(50000); err != nil {
		t.Fatal(err)
	}
}

func TestSystemFabricConfigPropagates(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Hosts:  4,
		Fabric: fabric.Config{LinkBandwidth: 12.5e9, MTU: 2048},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sys.Fabric.Config()
	if cfg.LinkBandwidth != 12.5e9 || cfg.MTU != 2048 {
		t.Fatalf("fabric config lost: %+v", cfg)
	}
}

func TestSystemDeterminism(t *testing.T) {
	run := func() int64 {
		sys, err := NewSystem(SystemConfig{Hosts: 8, Topology: "star", Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		comm, err := sys.NewCommunicator(sys.Hosts(), core.Config{Transport: verbs.UD})
		if err != nil {
			t.Fatal(err)
		}
		res, err := comm.RunAllgather(1 << 18)
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Duration())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed runs diverged: %d vs %d ns", a, b)
	}
}
